// Package locality models the locality-management design space of
// Section II-B: whether each processing unit's private cache and the
// shared second-level space are managed implicitly (by hardware),
// explicitly (by push statements in the program), or — for the shared
// space — by the paper's hybrid scheme (Section II-B5), where a
// per-block locality bit lets implicitly and explicitly managed data
// coexist in one physical cache.
//
// The package enumerates which schemes are available (and desirable)
// under each address-space model, which quantifies the paper's third
// conclusion: the partially shared address space allows the most
// locality-management options. It also plans the explicit push
// instructions a scheme requires, the only performance cost of explicit
// management the paper identifies (Section V-D).
package locality

import (
	"fmt"

	"heteromem/internal/addrspace"
	"heteromem/internal/mem"
	"heteromem/internal/trace"
)

// Mgmt is a locality-management mode for one part of the hierarchy.
type Mgmt uint8

const (
	// None means the space does not exist under the model (the shared
	// space of a disjoint address space).
	None Mgmt = iota
	// Implicit management is performed by hardware caching.
	Implicit
	// Explicit management is performed by the program (push statements).
	Explicit
	// Hybrid supports implicit and explicit data simultaneously via the
	// locality bit in the replacement logic (shared space only).
	Hybrid
)

func (m Mgmt) String() string {
	switch m {
	case None:
		return "none"
	case Implicit:
		return "impl"
	case Explicit:
		return "expl"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("mgmt(%d)", uint8(m))
	}
}

// Scheme is one locality-management configuration: a mode per private
// cache plus one for the shared space.
type Scheme struct {
	CPUPrivate Mgmt
	GPUPrivate Mgmt
	Shared     Mgmt
}

// Name returns the paper's naming convention, e.g.
// "impl-pri-expl-pri-expl-shared" for implicit CPU-private, explicit
// GPU-private, explicit shared.
func (s Scheme) Name() string {
	if s.Shared == None {
		return fmt.Sprintf("%s-pri-%s-pri", s.CPUPrivate, s.GPUPrivate)
	}
	return fmt.Sprintf("%s-pri-%s-pri-%s-shared", s.CPUPrivate, s.GPUPrivate, s.Shared)
}

// Named schemes discussed in Section II-B.
var (
	// ImplPrivExplShared is Section II-B1: hardware manages private
	// caches, the program manages the shared space.
	ImplPrivExplShared = Scheme{Implicit, Implicit, Explicit}
	// ExplPrivImplShared is Section II-B2: the program manages private
	// caches, hardware manages the shared space.
	ExplPrivImplShared = Scheme{Explicit, Explicit, Implicit}
	// MixedPrivExplShared is Section II-B3: the PUs differ in private
	// management, the shared space is explicit.
	MixedPrivExplShared = Scheme{Implicit, Explicit, Explicit}
	// MixedPrivImplShared is Section II-B4: the PUs differ in private
	// management, the shared space is implicit.
	MixedPrivImplShared = Scheme{Implicit, Explicit, Implicit}
	// HybridShared is Section II-B5: the shared space supports both
	// managements at once via the locality bit.
	HybridShared = Scheme{Implicit, Explicit, Hybrid}
)

// Validate reports whether the scheme is well-formed under the model:
// private modes must be implicit or explicit; the shared mode must be
// None exactly when the model has no shared space (disjoint).
func (s Scheme) Validate(model addrspace.Model) error {
	if s.CPUPrivate != Implicit && s.CPUPrivate != Explicit {
		return fmt.Errorf("locality: CPU private mode %v must be impl or expl", s.CPUPrivate)
	}
	if s.GPUPrivate != Implicit && s.GPUPrivate != Explicit {
		return fmt.Errorf("locality: GPU private mode %v must be impl or expl", s.GPUPrivate)
	}
	if model == addrspace.Disjoint {
		if s.Shared != None {
			return fmt.Errorf("locality: disjoint space has no shared cache to manage (%v)", s.Shared)
		}
		return nil
	}
	if s.Shared == None {
		return fmt.Errorf("locality: model %v has a shared space; scheme must manage it", model)
	}
	return nil
}

// Desirable reports whether the scheme is a sensible design point under
// the model, following the paper's qualitative analysis:
//
//   - Unified: explicit or hybrid shared management is undesirable
//     because potentially the whole space is shared, so programmers would
//     have to explicitly manage every data structure (Section II-B1).
//   - ADSM: the hybrid scheme relies on the partially shared space's
//     ownership/type information to tell explicit from implicit data;
//     ADSM was proposed as a software-only model without it.
//   - PartiallyShared: every scheme is available — the paper's point.
func (s Scheme) Desirable(model addrspace.Model) bool {
	if s.Validate(model) != nil {
		return false
	}
	switch model {
	case addrspace.Unified:
		return s.Shared == Implicit
	case addrspace.ADSM:
		return s.Shared != Hybrid
	default:
		return true
	}
}

// privateModes are the choices for a private cache.
var privateModes = []Mgmt{Implicit, Explicit}

// sharedModes are the choices for the shared space where one exists.
var sharedModes = []Mgmt{Implicit, Explicit, Hybrid}

// Options returns every well-formed scheme under the model.
func Options(model addrspace.Model) []Scheme {
	var out []Scheme
	for _, c := range privateModes {
		for _, g := range privateModes {
			if model == addrspace.Disjoint {
				out = append(out, Scheme{c, g, None})
				continue
			}
			for _, sh := range sharedModes {
				out = append(out, Scheme{c, g, sh})
			}
		}
	}
	return out
}

// DesirableOptions returns the schemes that are sensible design points
// under the model. Comparing counts across models reproduces the paper's
// conclusion 3: partially shared > ADSM > unified = disjoint.
func DesirableOptions(model addrspace.Model) []Scheme {
	var out []Scheme
	for _, s := range Options(model) {
		if s.Desirable(model) {
			out = append(out, s)
		}
	}
	return out
}

// PushOp is one explicit placement a scheme requires.
type PushOp struct {
	// PU executes the push.
	PU mem.PU
	// Addr and Size identify the object.
	Addr uint64
	Size uint32
	// Level is the trace push level (trace.PushPrivate / PushShared /
	// PushSoftware).
	Level uint8
}

// Object describes one data object for push planning.
type Object struct {
	Addr uint64
	Size uint32
	// Region is where the object is allocated.
	Region addrspace.Region
	// User is the PU that computes on the object.
	User mem.PU
	// Critical marks data the program would explicitly place under a
	// hybrid shared scheme (only critical data is managed explicitly;
	// the rest rides on implicit caching — Section II-B5).
	Critical bool
}

// Plan returns the push operations the scheme requires for the given
// objects: explicit private management pushes each object into its
// user's first-level (software cache for the GPU); explicit shared
// management pushes shared objects into the second-level cache; the
// hybrid scheme pushes only critical shared objects.
func Plan(s Scheme, objects []Object) []PushOp {
	var out []PushOp
	for _, o := range objects {
		switch o.Region {
		case addrspace.Shared:
			switch s.Shared {
			case Explicit:
				out = append(out, PushOp{PU: o.User, Addr: o.Addr, Size: o.Size, Level: trace.PushShared})
			case Hybrid:
				if o.Critical {
					out = append(out, PushOp{PU: o.User, Addr: o.Addr, Size: o.Size, Level: trace.PushShared})
				}
			}
		case addrspace.CPUPrivate:
			if s.CPUPrivate == Explicit && o.User == mem.CPU {
				out = append(out, PushOp{PU: mem.CPU, Addr: o.Addr, Size: o.Size, Level: trace.PushPrivate})
			}
		case addrspace.GPUPrivate:
			if s.GPUPrivate == Explicit && o.User == mem.GPU {
				out = append(out, PushOp{PU: mem.GPU, Addr: o.Addr, Size: o.Size, Level: trace.PushSoftware})
			}
		}
	}
	return out
}

// ExtraInstructions returns how many additional instructions the scheme
// adds for the given objects — the paper's observation that explicit
// locality management costs only its push instructions (Section V-D).
func ExtraInstructions(s Scheme, objects []Object) int {
	return len(Plan(s, objects))
}
