package locality

import (
	"strings"
	"testing"

	"heteromem/internal/addrspace"
	"heteromem/internal/mem"
	"heteromem/internal/trace"
)

func TestSchemeNames(t *testing.T) {
	if got := ImplPrivExplShared.Name(); got != "impl-pri-impl-pri-expl-shared" {
		t.Errorf("name = %q", got)
	}
	if got := HybridShared.Name(); got != "impl-pri-expl-pri-hybrid-shared" {
		t.Errorf("name = %q", got)
	}
	disjoint := Scheme{Implicit, Explicit, None}
	if got := disjoint.Name(); got != "impl-pri-expl-pri" {
		t.Errorf("disjoint name = %q", got)
	}
	if !strings.Contains(Mgmt(9).String(), "9") {
		t.Error("unknown mgmt should print value")
	}
}

func TestValidate(t *testing.T) {
	// The named schemes are valid under partially shared.
	for _, s := range []Scheme{ImplPrivExplShared, ExplPrivImplShared, MixedPrivExplShared, MixedPrivImplShared, HybridShared} {
		if err := s.Validate(addrspace.PartiallyShared); err != nil {
			t.Errorf("%v invalid under PAS: %v", s.Name(), err)
		}
	}
	// Disjoint must not manage a shared space.
	if err := ImplPrivExplShared.Validate(addrspace.Disjoint); err == nil {
		t.Error("shared management accepted under disjoint")
	}
	if err := (Scheme{Implicit, Implicit, None}).Validate(addrspace.Disjoint); err != nil {
		t.Errorf("disjoint scheme rejected: %v", err)
	}
	// Models with a shared space require managing it.
	if err := (Scheme{Implicit, Implicit, None}).Validate(addrspace.Unified); err == nil {
		t.Error("None shared accepted under unified")
	}
	// Private modes must be impl or expl.
	if err := (Scheme{Hybrid, Implicit, Implicit}).Validate(addrspace.Unified); err == nil {
		t.Error("hybrid private accepted")
	}
	if err := (Scheme{Implicit, None, Implicit}).Validate(addrspace.Unified); err == nil {
		t.Error("none private accepted")
	}
}

func TestPartiallySharedHasMostOptions(t *testing.T) {
	// Conclusion 3: the partially shared address space allows the most
	// locality management options.
	counts := make(map[addrspace.Model]int)
	for _, m := range addrspace.AllModels() {
		counts[m] = len(DesirableOptions(m))
	}
	pas := counts[addrspace.PartiallyShared]
	for _, m := range addrspace.AllModels() {
		if m == addrspace.PartiallyShared {
			continue
		}
		if counts[m] >= pas {
			t.Errorf("%v has %d options >= partially shared's %d", m, counts[m], pas)
		}
	}
	// Expected counts: PAS 2*2*3=12, ADSM 2*2*2=8, UNI 2*2=4, DIS 2*2=4.
	want := map[addrspace.Model]int{
		addrspace.PartiallyShared: 12,
		addrspace.ADSM:            8,
		addrspace.Unified:         4,
		addrspace.Disjoint:        4,
	}
	for m, w := range want {
		if counts[m] != w {
			t.Errorf("%v: %d desirable options, want %d", m, counts[m], w)
		}
	}
}

func TestOptionsAllValid(t *testing.T) {
	for _, m := range addrspace.AllModels() {
		for _, s := range Options(m) {
			if err := s.Validate(m); err != nil {
				t.Errorf("Options(%v) yielded invalid %v: %v", m, s.Name(), err)
			}
		}
	}
	if got := len(Options(addrspace.Disjoint)); got != 4 {
		t.Errorf("disjoint options = %d, want 4", got)
	}
	if got := len(Options(addrspace.Unified)); got != 12 {
		t.Errorf("unified options = %d, want 12", got)
	}
}

func TestUnifiedExplicitSharedUndesirable(t *testing.T) {
	// Section II-B1: explicit shared management under unified is
	// undesirable (all memory is potentially shared).
	if ImplPrivExplShared.Desirable(addrspace.Unified) {
		t.Error("expl-shared desirable under unified")
	}
	if !ExplPrivImplShared.Desirable(addrspace.Unified) {
		t.Error("impl-shared not desirable under unified")
	}
	if HybridShared.Desirable(addrspace.ADSM) {
		t.Error("hybrid desirable under ADSM")
	}
	if !HybridShared.Desirable(addrspace.PartiallyShared) {
		t.Error("hybrid not desirable under partially shared")
	}
}

func testObjects() []Object {
	return []Object{
		{Addr: 0x1000, Size: 4096, Region: addrspace.CPUPrivate, User: mem.CPU},
		{Addr: 0x2000, Size: 4096, Region: addrspace.GPUPrivate, User: mem.GPU},
		{Addr: 0x3000, Size: 4096, Region: addrspace.Shared, User: mem.CPU, Critical: true},
		{Addr: 0x4000, Size: 4096, Region: addrspace.Shared, User: mem.GPU},
	}
}

func TestPlanExplicitShared(t *testing.T) {
	ops := Plan(ImplPrivExplShared, testObjects())
	// Both shared objects pushed, no private pushes.
	if len(ops) != 2 {
		t.Fatalf("ops = %d, want 2: %+v", len(ops), ops)
	}
	for _, op := range ops {
		if op.Level != trace.PushShared {
			t.Errorf("push level %d, want shared", op.Level)
		}
	}
}

func TestPlanExplicitPrivate(t *testing.T) {
	ops := Plan(ExplPrivImplShared, testObjects())
	if len(ops) != 2 {
		t.Fatalf("ops = %d, want 2 (one per private object)", len(ops))
	}
	var sawCPU, sawGPU bool
	for _, op := range ops {
		switch op.PU {
		case mem.CPU:
			sawCPU = true
			if op.Level != trace.PushPrivate {
				t.Error("CPU private push should target the private cache")
			}
		case mem.GPU:
			sawGPU = true
			if op.Level != trace.PushSoftware {
				t.Error("GPU private push should target the software cache")
			}
		}
	}
	if !sawCPU || !sawGPU {
		t.Error("missing a private push")
	}
}

func TestPlanHybridOnlyCritical(t *testing.T) {
	ops := Plan(HybridShared, testObjects())
	// Hybrid: only the critical shared object is pushed to S; the GPU
	// private object is explicit under this scheme too.
	var shared, private int
	for _, op := range ops {
		if op.Level == trace.PushShared {
			shared++
			if op.Addr != 0x3000 {
				t.Errorf("pushed non-critical shared object %#x", op.Addr)
			}
		} else {
			private++
		}
	}
	if shared != 1 {
		t.Fatalf("shared pushes = %d, want 1 (critical only)", shared)
	}
	if private != 1 {
		t.Fatalf("private pushes = %d, want 1 (GPU explicit private)", private)
	}
}

func TestPlanAllImplicitEmpty(t *testing.T) {
	allImpl := Scheme{Implicit, Implicit, Implicit}
	if ops := Plan(allImpl, testObjects()); len(ops) != 0 {
		t.Fatalf("all-implicit scheme planned %d pushes", len(ops))
	}
	if ExtraInstructions(allImpl, testObjects()) != 0 {
		t.Fatal("all-implicit scheme has extra instructions")
	}
}

func TestExtraInstructionsMatchesPlan(t *testing.T) {
	objs := testObjects()
	for _, s := range DesirableOptions(addrspace.PartiallyShared) {
		if got, want := ExtraInstructions(s, objs), len(Plan(s, objs)); got != want {
			t.Errorf("%v: extra = %d, plan = %d", s.Name(), got, want)
		}
	}
}
