// Package prof provides the standard -cpuprofile/-memprofile flags for
// the command-line tools. Importing it registers the flags on the
// default flag set; Start (called after flag.Parse) begins CPU
// profiling and returns the stop function main defers.
package prof

import (
	"flag"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
)

// Start begins CPU profiling when -cpuprofile was given. Call it after
// flag.Parse and defer the returned stop function: it finishes the CPU
// profile and, when -memprofile was given, writes a heap profile after
// a final garbage collection (so the profile shows live data, not
// garbage awaiting collection).
func Start() func() {
	var cpuFile *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				log.Fatal(err)
			}
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
}
