// Package comm models the hardware communication mechanisms between the
// CPU and GPU memory systems (Section II, Table IV): PCI-E 2.0 bulk
// copies (CPU+GPU and GMAC), the PCI aperture of the LRB partially shared
// space, DMA through the shared memory controllers (Fusion), and the
// zero-cost ideal fabric (IDEAL-HETERO).
//
// A Fabric times bulk data movement between the two PUs' memories.
// Programming-model overheads that are not bulk movement — ownership
// acquire/release, first-touch page faults — are modeled as special
// instructions executed by the cores, not here.
package comm

import (
	"fmt"

	"heteromem/internal/clock"
	"heteromem/internal/config"
	"heteromem/internal/dram"
	"heteromem/internal/isa"
	"heteromem/internal/obs"
)

// Fabric times bulk transfers between CPU and GPU memory.
type Fabric interface {
	// Name identifies the fabric in reports.
	Name() string
	// Transfer moves bytes between the memories starting no earlier than
	// now and returns the completion time.
	Transfer(bytes uint64, now clock.Time) clock.Time
	// Async reports whether transfers may overlap computation (the GMAC
	// asynchronous-copy property); a synchronous fabric blocks the
	// initiating PU for the whole transfer.
	Async() bool
	// Launch is the synchronous cost the initiating PU pays to start a
	// transfer on an asynchronous fabric (the driver call that enqueues
	// the copy). Synchronous fabrics return zero: Transfer itself blocks.
	Launch() clock.Duration
	// Stats returns cumulative transfer counters.
	Stats() Stats
	// Instrument registers the fabric's metrics (comm.*) with reg; a nil
	// registry detaches them.
	Instrument(reg *obs.Registry)
	// Reset returns the fabric to its just-constructed state (idle link,
	// zeroed statistics), keeping any instruments wired.
	Reset()
}

// Stats counts fabric activity.
type Stats struct {
	Transfers uint64
	Bytes     uint64
	Busy      clock.Duration
}

// fabObs holds a fabric's observability instruments under the comm.*
// namespace; nil instruments make every bump a no-op. All fabric kinds
// share the same metric names — a simulator has exactly one fabric.
type fabObs struct {
	transfers *obs.Counter
	bytes     *obs.Counter
	busyPS    *obs.Counter
}

func newFabObs(reg *obs.Registry) fabObs {
	return fabObs{
		transfers: reg.Counter("comm.transfers"),
		bytes:     reg.Counter("comm.bytes"),
		busyPS:    reg.Counter("comm.busy_ps"),
	}
}

func (o *fabObs) record(bytes uint64, busy clock.Duration) {
	o.transfers.Inc()
	o.bytes.Add(bytes)
	o.busyPS.Add(uint64(busy))
}

// PCIe is the PCI-E 2.0 fabric: each transfer pays the api-pci base
// latency plus serialisation at the link rate, and concurrent transfers
// contend for the link.
type PCIe struct {
	params config.CommParams
	link   *clock.Resource
	async  bool
	stats  Stats
	obs    fabObs
}

// NewPCIe returns a PCI-E fabric with Table IV costs. async selects the
// GMAC behaviour (asynchronous copies the runtime overlaps with
// computation).
func NewPCIe(params config.CommParams, async bool) *PCIe {
	return &PCIe{params: params, link: clock.NewResource("pcie"), async: async}
}

// Name implements Fabric.
func (p *PCIe) Name() string {
	if p.async {
		return "pcie-async"
	}
	return "pcie"
}

// Async implements Fabric.
func (p *PCIe) Async() bool { return p.async }

// Launch implements Fabric: enqueuing an asynchronous copy costs the
// api-pci base latency on the host; a synchronous copy pays everything
// inside Transfer instead.
func (p *PCIe) Launch() clock.Duration {
	if !p.async {
		return 0
	}
	return p.params.Latency(isa.APIPCI, 0)
}

// Stats implements Fabric.
func (p *PCIe) Stats() Stats { return p.stats }

// Instrument implements Fabric.
func (p *PCIe) Instrument(reg *obs.Registry) { p.obs = newFabObs(reg) }

// Reset implements Fabric.
func (p *PCIe) Reset() {
	p.link.Reset()
	p.stats = Stats{}
}

// Transfer implements Fabric: base api-pci latency, then the payload
// serialises onto the shared link.
func (p *PCIe) Transfer(bytes uint64, now clock.Time) clock.Time {
	base := p.params.Latency(isa.APIPCI, 0)
	ser := p.params.Latency(isa.APIPCI, clampU32(bytes)) - base
	start, done := p.link.Acquire(now.Add(base), ser)
	_ = start
	p.stats.Transfers++
	p.stats.Bytes += bytes
	p.stats.Busy += ser
	p.obs.record(bytes, ser)
	return done
}

// Aperture is the LRB PCI-aperture fabric: transfers into the partially
// shared space pay the much smaller api-tr base cost plus link-rate
// serialisation, because the aperture already provides a mapped common
// buffer with asynchronous copy support.
type Aperture struct {
	params config.CommParams
	link   *clock.Resource
	stats  Stats
	obs    fabObs
}

// NewAperture returns a PCI-aperture fabric with Table IV costs.
func NewAperture(params config.CommParams) *Aperture {
	return &Aperture{params: params, link: clock.NewResource("aperture")}
}

// Name implements Fabric.
func (a *Aperture) Name() string { return "pci-aperture" }

// Async implements Fabric: aperture copies are synchronous API calls in
// the LRB model.
func (a *Aperture) Async() bool { return false }

// Launch implements Fabric.
func (a *Aperture) Launch() clock.Duration { return 0 }

// Stats implements Fabric.
func (a *Aperture) Stats() Stats { return a.stats }

// Instrument implements Fabric.
func (a *Aperture) Instrument(reg *obs.Registry) { a.obs = newFabObs(reg) }

// Reset implements Fabric.
func (a *Aperture) Reset() {
	a.link.Reset()
	a.stats = Stats{}
}

// Transfer implements Fabric.
func (a *Aperture) Transfer(bytes uint64, now clock.Time) clock.Time {
	base := a.params.Latency(isa.APITransfer, 0)
	ser := a.params.Latency(isa.APITransfer, clampU32(bytes)) - base
	_, done := a.link.Acquire(now.Add(base), ser)
	a.stats.Transfers++
	a.stats.Bytes += bytes
	a.stats.Busy += ser
	a.obs.record(bytes, ser)
	return done
}

// MemController is the Fusion fabric: CPU and GPU memories hang off the
// same memory controllers, so a transfer is a DMA that reads the source
// and writes the destination — memory accesses for every byte moved, but
// no PCI-E latency.
type MemController struct {
	ctrl  *dram.Controller
	stats Stats
	obs   fabObs
}

// NewMemController returns a memory-controller fabric backed by ctrl.
func NewMemController(ctrl *dram.Controller) *MemController {
	return &MemController{ctrl: ctrl}
}

// Name implements Fabric.
func (m *MemController) Name() string { return "memctrl" }

// Async implements Fabric: the paper models Fusion's transfers as
// ordinary (synchronous) memory traffic.
func (m *MemController) Async() bool { return false }

// Launch implements Fabric.
func (m *MemController) Launch() clock.Duration { return 0 }

// Stats implements Fabric.
func (m *MemController) Stats() Stats { return m.stats }

// Instrument implements Fabric.
func (m *MemController) Instrument(reg *obs.Registry) { m.obs = newFabObs(reg) }

// Reset implements Fabric: the controller belongs to the hierarchy,
// which resets it; only the fabric's own counters clear here.
func (m *MemController) Reset() { m.stats = Stats{} }

// Transfer implements Fabric: read every source line and write every
// destination line through the controllers.
func (m *MemController) Transfer(bytes uint64, now clock.Time) clock.Time {
	done := m.ctrl.TransferTime(2*bytes, now)
	m.stats.Transfers++
	m.stats.Bytes += bytes
	m.stats.Busy += done.Sub(now)
	m.obs.record(bytes, done.Sub(now))
	return done
}

// Ideal is the zero-cost fabric of IDEAL-HETERO and the Figure 7
// experiment.
type Ideal struct {
	stats Stats
	obs   fabObs
}

// NewIdeal returns an ideal fabric.
func NewIdeal() *Ideal { return &Ideal{} }

// Name implements Fabric.
func (i *Ideal) Name() string { return "ideal" }

// Async implements Fabric: nothing to overlap.
func (i *Ideal) Async() bool { return false }

// Launch implements Fabric.
func (i *Ideal) Launch() clock.Duration { return 0 }

// Stats implements Fabric.
func (i *Ideal) Stats() Stats { return i.stats }

// Instrument implements Fabric.
func (i *Ideal) Instrument(reg *obs.Registry) { i.obs = newFabObs(reg) }

// Reset implements Fabric.
func (i *Ideal) Reset() { i.stats = Stats{} }

// Transfer implements Fabric: free.
func (i *Ideal) Transfer(bytes uint64, now clock.Time) clock.Time {
	i.stats.Transfers++
	i.stats.Bytes += bytes
	i.obs.record(bytes, 0)
	return now
}

func clampU32(v uint64) uint32 {
	if v > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(v)
}

var (
	_ Fabric = (*PCIe)(nil)
	_ Fabric = (*Aperture)(nil)
	_ Fabric = (*MemController)(nil)
	_ Fabric = (*Ideal)(nil)
)

// String summarises fabric stats for reports.
func (s Stats) String() string {
	return fmt.Sprintf("%d transfers, %d bytes, busy %v", s.Transfers, s.Bytes, s.Busy)
}
