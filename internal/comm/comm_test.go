package comm

import (
	"testing"

	"heteromem/internal/clock"
	"heteromem/internal/config"
	"heteromem/internal/dram"
)

func TestPCIeBasePlusRate(t *testing.T) {
	p := NewPCIe(config.TableIV(), false)
	// Zero bytes: just the base latency (33250 cycles at 3.5 GHz = 9.5us).
	d0 := p.Transfer(0, 0).Sub(0)
	if d0 < 9*clock.Microsecond || d0 > 10*clock.Microsecond {
		t.Fatalf("PCIe base %v, want ~9.5us", d0)
	}
	// 1 MB at 16 GB/s adds ~65.5us.
	p2 := NewPCIe(config.TableIV(), false)
	d1 := p2.Transfer(1<<20, 0).Sub(0)
	added := d1 - d0
	if added < 60*clock.Microsecond || added > 70*clock.Microsecond {
		t.Fatalf("1MB serialisation %v, want ~65.5us", added)
	}
}

func TestPCIeLinkContention(t *testing.T) {
	p := NewPCIe(config.TableIV(), false)
	a := p.Transfer(1<<20, 0)
	b := p.Transfer(1<<20, 0)
	if b <= a {
		t.Fatal("concurrent PCIe transfers did not serialise on the link")
	}
}

func TestPCIeAsyncFlag(t *testing.T) {
	if NewPCIe(config.TableIV(), false).Async() {
		t.Error("sync PCIe reports async")
	}
	g := NewPCIe(config.TableIV(), true)
	if !g.Async() {
		t.Error("GMAC-style PCIe not async")
	}
	if g.Name() != "pcie-async" || NewPCIe(config.TableIV(), false).Name() != "pcie" {
		t.Error("PCIe names wrong")
	}
}

func TestApertureCheaperThanPCIe(t *testing.T) {
	params := config.TableIV()
	p := NewPCIe(params, false)
	a := NewAperture(params)
	size := uint64(64 << 10)
	dp := p.Transfer(size, 0).Sub(0)
	da := a.Transfer(size, 0).Sub(0)
	if da >= dp {
		t.Fatalf("aperture (%v) not cheaper than PCIe (%v)", da, dp)
	}
}

func TestMemControllerCheapest(t *testing.T) {
	params := config.TableIV()
	size := uint64(64 << 10)
	mc := NewMemController(dram.MustNew(dram.DDR3_1333()))
	dm := mc.Transfer(size, 0).Sub(0)
	da := NewAperture(params).Transfer(size, 0).Sub(0)
	// Paper: "the memory access cost is also very small compared to that
	// of PCI-e" — the Fusion path beats even the aperture for real sizes.
	if dm >= da {
		t.Fatalf("memctrl (%v) not cheaper than aperture (%v)", dm, da)
	}
	if dm == 0 {
		t.Fatal("memctrl transfer free")
	}
}

func TestMemControllerScalesWithSize(t *testing.T) {
	mc := NewMemController(dram.MustNew(dram.DDR3_1333()))
	d1 := mc.Transfer(16<<10, 0)
	d2 := mc.Transfer(256<<10, d1)
	if d2.Sub(d1) <= d1.Sub(0) {
		t.Fatal("16x larger transfer not slower")
	}
}

func TestIdealFree(t *testing.T) {
	i := NewIdeal()
	if got := i.Transfer(1<<30, 42); got != 42 {
		t.Fatalf("ideal transfer cost time: %v", got)
	}
	if i.Stats().Transfers != 1 || i.Stats().Bytes != 1<<30 {
		t.Fatalf("ideal stats %+v", i.Stats())
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := NewPCIe(config.TableIV(), false)
	p.Transfer(1000, 0)
	p.Transfer(2000, 0)
	st := p.Stats()
	if st.Transfers != 2 || st.Bytes != 3000 {
		t.Fatalf("stats %+v", st)
	}
	if st.Busy == 0 {
		t.Fatal("busy time not tracked")
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestFabricIdentities(t *testing.T) {
	params := config.TableIV()
	fabrics := []struct {
		f         Fabric
		name      string
		async     bool
		hasLaunch bool
	}{
		{NewPCIe(params, false), "pcie", false, false},
		{NewPCIe(params, true), "pcie-async", true, true},
		{NewAperture(params), "pci-aperture", false, false},
		{NewMemController(dram.MustNew(dram.DDR3_1333())), "memctrl", false, false},
		{NewIdeal(), "ideal", false, false},
	}
	for _, c := range fabrics {
		if c.f.Name() != c.name {
			t.Errorf("name = %q, want %q", c.f.Name(), c.name)
		}
		if c.f.Async() != c.async {
			t.Errorf("%s: async = %v", c.name, c.f.Async())
		}
		if got := c.f.Launch() > 0; got != c.hasLaunch {
			t.Errorf("%s: launch cost presence = %v, want %v", c.name, got, c.hasLaunch)
		}
		c.f.Transfer(128, 0)
		if c.f.Stats().Transfers != 1 {
			t.Errorf("%s: stats not tracked", c.name)
		}
	}
}

func TestAsyncLaunchIsAPIBase(t *testing.T) {
	params := config.TableIV()
	g := NewPCIe(params, true)
	// The launch cost is the api-pci base: 33250 cycles at 3.5 GHz = 9.5us.
	if got := g.Launch(); got < 9*clock.Microsecond || got > 10*clock.Microsecond {
		t.Fatalf("launch = %v, want ~9.5us", got)
	}
}

func TestClampHugeTransfer(t *testing.T) {
	// Transfers beyond 4 GiB clamp the latency computation rather than
	// wrapping; the fabric still counts the true byte total.
	p := NewPCIe(config.TableIV(), false)
	d := p.Transfer(1<<33, 0)
	if d == 0 {
		t.Fatal("huge transfer free")
	}
	if p.Stats().Bytes != 1<<33 {
		t.Fatalf("bytes = %d", p.Stats().Bytes)
	}
}

func TestFabricOrdering(t *testing.T) {
	// The paper's Figure 6 ordering for a typical transfer:
	// ideal < memctrl < aperture < pcie.
	params := config.TableIV()
	size := uint64(320512) // reduction's initial transfer (Table III)
	ideal := NewIdeal().Transfer(size, 0).Sub(0)
	mc := NewMemController(dram.MustNew(dram.DDR3_1333())).Transfer(size, 0).Sub(0)
	ap := NewAperture(params).Transfer(size, 0).Sub(0)
	pc := NewPCIe(params, false).Transfer(size, 0).Sub(0)
	if !(ideal < mc && mc < ap && ap < pc) {
		t.Fatalf("fabric ordering violated: ideal=%v memctrl=%v aperture=%v pcie=%v", ideal, mc, ap, pc)
	}
}
